// Thread-backend soak tests (ctest label: stress). Larger clusters and
// repeated runs give real OS scheduling enough room to produce rollback
// storms, annihilation races and fence contention; any divergence from the
// sequential reference is a synchronization bug. The quick CI lane skips
// these with `ctest -LE stress`; the TSan lane runs them to chase races.
#include <gtest/gtest.h>

#include <string>

#include "core/simulation.hpp"
#include "exec/backend.hpp"
#include "models/registry.hpp"
#include "pdes/seqref.hpp"

namespace cagvt::exec {
namespace {

void expect_matches_seqref(const core::SimulationConfig& cfg, const pdes::Model& model,
                           const core::SimulationResult& r) {
  const pdes::LpMap map = core::Simulation::make_map(cfg);
  pdes::SequentialReference ref(model, map, {.end_vt = cfg.end_vt, .seed = cfg.seed});
  ref.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.events.committed, ref.committed());
  EXPECT_EQ(r.committed_fingerprint, ref.fingerprint());
  EXPECT_EQ(r.state_hash, ref.state_hash());
}

TEST(ThreadStressTest, LargerClusterMatchesSequentialReference) {
  // 4 nodes x 4 threads with heavy remote traffic, for every GVT algorithm
  // crossed with every MPI placement.
  for (const core::GvtKind kind :
       {core::GvtKind::kBarrier, core::GvtKind::kMattern,
        core::GvtKind::kControlledAsync, core::GvtKind::kEpoch}) {
    for (const core::MpiPlacement mpi :
         {core::MpiPlacement::kDedicated, core::MpiPlacement::kCombined,
          core::MpiPlacement::kEverywhere}) {
      core::SimulationConfig cfg;
      cfg.nodes = 4;
      cfg.threads_per_node = 4;
      cfg.lps_per_worker = 4;
      cfg.end_vt = 60.0;
      cfg.gvt_interval = 8;
      cfg.seed = 97;
      cfg.gvt = kind;
      cfg.mpi = mpi;
      const pdes::LpMap map = core::Simulation::make_map(cfg);
      const auto model = models::make_model(
          "phold", Options::parse_kv("remote=0.3,regional=0.3,epg=200"), map, cfg.end_vt);

      SCOPED_TRACE(std::string(to_string(kind)) + "/" + std::string(to_string(mpi)));
      const core::SimulationResult r =
          run_simulation(cfg, *model, BackendKind::kThreads, 300.0);
      expect_matches_seqref(cfg, *model, r);
    }
  }
}

TEST(ThreadStressTest, RepeatedRunsStayDeterministic) {
  // Hammer one configuration many times; OS scheduling varies per run, the
  // committed results must not.
  core::SimulationConfig cfg;
  cfg.nodes = 2;
  cfg.threads_per_node = 3;
  cfg.lps_per_worker = 6;
  cfg.end_vt = 20.0;
  cfg.gvt_interval = 6;
  cfg.seed = 31;
  cfg.gvt = core::GvtKind::kControlledAsync;
  const pdes::LpMap map = core::Simulation::make_map(cfg);
  const auto model = models::make_model(
      "phold", Options::parse_kv("remote=0.2,regional=0.3,epg=500"), map, cfg.end_vt);

  pdes::SequentialReference ref(*model, map, {.end_vt = cfg.end_vt, .seed = cfg.seed});
  ref.run();
  for (int run = 0; run < 10; ++run) {
    const core::SimulationResult r =
        run_simulation(cfg, *model, BackendKind::kThreads, 120.0);
    ASSERT_TRUE(r.completed) << "run " << run;
    EXPECT_EQ(r.committed_fingerprint, ref.fingerprint()) << "run " << run;
    EXPECT_EQ(r.state_hash, ref.state_hash()) << "run " << run;
  }
}

}  // namespace
}  // namespace cagvt::exec
