// PHOLD family: destination distributions, replay determinism, phase
// switching, imbalance classification.
#include <gtest/gtest.h>

#include "models/imbalanced_phold.hpp"
#include "models/mixed_phold.hpp"
#include "models/phold.hpp"

namespace cagvt::models {
namespace {

using pdes::Event;
using pdes::EventSink;
using pdes::LpId;
using pdes::LpMap;

Event run_handler(const pdes::Model& model, std::vector<std::byte>& state, const Event& in) {
  InlineVec<Event, 2> out;
  EventSink sink(in.dst_lp, in.recv_ts, in.uid, out);
  model.handle_event({state.data(), state.size()}, in, sink);
  CAGVT_CHECK(out.size() == 1);
  return out[0];
}

Event make_input(LpId dst, double ts, std::uint64_t uid) {
  Event e;
  e.recv_ts = ts;
  e.uid = uid;
  e.dst_lp = dst;
  e.src_lp = dst;
  return e;
}

TEST(PholdTest, EachEventGeneratesExactlyOne) {
  LpMap map(2, 2, 4);
  PholdModel model(map, {});
  std::vector<std::byte> state(model.state_size(), std::byte{0});
  const Event out = run_handler(model, state, make_input(0, 1.0, 42));
  EXPECT_GT(out.recv_ts, 1.0);
  EXPECT_EQ(out.src_lp, 0);
  EXPECT_GE(out.dst_lp, 0);
  EXPECT_LT(out.dst_lp, map.total_lps());
}

TEST(PholdTest, ReplayIsBitIdentical) {
  LpMap map(2, 2, 4);
  PholdModel model(map, {});
  std::vector<std::byte> s1(model.state_size(), std::byte{0});
  std::vector<std::byte> s2(model.state_size(), std::byte{0});
  const Event in = make_input(3, 2.5, 777);
  const Event a = run_handler(model, s1, in);
  const Event b = run_handler(model, s2, in);
  EXPECT_EQ(a.uid, b.uid);
  EXPECT_EQ(a.dst_lp, b.dst_lp);
  EXPECT_DOUBLE_EQ(a.recv_ts, b.recv_ts);
  EXPECT_EQ(s1, s2);
}

TEST(PholdTest, DestinationMixMatchesConfiguredPercentages) {
  LpMap map(4, 4, 8);
  PholdParams params;
  params.remote_pct = 0.10;
  params.regional_pct = 0.30;
  PholdModel model(map, params);
  std::vector<std::byte> state(model.state_size(), std::byte{0});

  const LpId src = 0;
  int local = 0, regional = 0, remote = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const Event out =
        run_handler(model, state, make_input(src, 1.0, 1000 + static_cast<std::uint64_t>(i)));
    switch (classify(map, src, out.dst_lp)) {
      case pdes::Locality::kLocal: ++local; break;
      case pdes::Locality::kRegional: ++regional; break;
      case pdes::Locality::kRemote: ++remote; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(remote) / kN, 0.10, 0.01);
  EXPECT_NEAR(static_cast<double>(regional) / kN, 0.30, 0.015);
  EXPECT_NEAR(static_cast<double>(local) / kN, 0.60, 0.015);
}

TEST(PholdTest, RemoteNeverTargetsOwnNodeRegionalNeverOwnWorker) {
  LpMap map(4, 4, 8);
  PholdParams params;
  params.remote_pct = 0.5;
  params.regional_pct = 0.5;  // no locals at all
  PholdModel model(map, params);
  std::vector<std::byte> state(model.state_size(), std::byte{0});
  for (int i = 0; i < 5000; ++i) {
    const Event out =
        run_handler(model, state, make_input(0, 1.0, static_cast<std::uint64_t>(i)));
    EXPECT_NE(map.worker_of(out.dst_lp), map.worker_of(0));
  }
}

TEST(PholdTest, SingleNodeDowngradesRemoteToLocal) {
  LpMap map(1, 1, 8);  // no other node, no other worker
  PholdParams params;
  params.remote_pct = 1.0;
  PholdModel model(map, params);
  std::vector<std::byte> state(model.state_size(), std::byte{0});
  const Event out = run_handler(model, state, make_input(0, 1.0, 9));
  EXPECT_EQ(map.worker_of(out.dst_lp), 0);
}

TEST(PholdTest, TimestampIncrementsAreExponentialWithConfiguredMean) {
  LpMap map(1, 1, 4);
  PholdParams params;
  params.mean_delay = 2.0;
  PholdModel model(map, params);
  std::vector<std::byte> state(model.state_size(), std::byte{0});
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const Event out =
        run_handler(model, state, make_input(0, 10.0, static_cast<std::uint64_t>(i)));
    sum += out.recv_ts - 10.0;
  }
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(PholdTest, InitSchedulesConfiguredStartEvents) {
  LpMap map(1, 1, 4);
  PholdParams params;
  params.start_events_per_lp = 2;
  PholdModel model(map, params);
  std::vector<std::byte> state(model.state_size(), std::byte{0});
  InlineVec<Event, 2> out;
  EventSink sink(1, 0.0, 123, out);
  model.init_lp(1, {state.data(), state.size()}, sink);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].dst_lp, 1);
  EXPECT_GT(out[0].recv_ts, 0.0);
}

TEST(MixedPholdTest, PhaseScheduleFollowsXY) {
  LpMap map(1, 1, 1);
  MixedPholdParams mp;
  mp.x_pct = 10;
  mp.y_pct = 15;
  mp.end_vt = 100.0;
  MixedPholdModel model(map, mp);
  // Cycle = 25 vt; first 10 vt computation, next 15 communication.
  EXPECT_TRUE(model.computation_phase(0.0));
  EXPECT_TRUE(model.computation_phase(9.9));
  EXPECT_FALSE(model.computation_phase(10.1));
  EXPECT_FALSE(model.computation_phase(24.9));
  EXPECT_TRUE(model.computation_phase(25.1));   // pattern repeats
  EXPECT_FALSE(model.computation_phase(60.0));  // 60 mod 25 = 10 -> comm
}

TEST(MixedPholdTest, CostFollowsPhase) {
  LpMap map(1, 1, 1);
  MixedPholdParams mp;
  mp.computation.epg_units = 10000;
  mp.communication.epg_units = 5000;
  mp.x_pct = 50;
  mp.y_pct = 50;
  mp.end_vt = 10.0;
  MixedPholdModel model(map, mp);
  Event e = make_input(0, 1.0, 1);
  EXPECT_DOUBLE_EQ(model.cost_units(e), 10000);
  e.recv_ts = 6.0;
  EXPECT_DOUBLE_EQ(model.cost_units(e), 5000);
}

TEST(MixedPholdTest, DestinationMixFollowsPhase) {
  LpMap map(4, 4, 4);
  MixedPholdParams mp;
  mp.computation.remote_pct = 0.0;
  mp.computation.regional_pct = 0.0;
  mp.communication.remote_pct = 0.5;
  mp.communication.regional_pct = 0.5;
  mp.x_pct = 50;
  mp.y_pct = 50;
  mp.end_vt = 10.0;
  MixedPholdModel model(map, mp);
  std::vector<std::byte> state(model.state_size(), std::byte{0});
  for (int i = 0; i < 500; ++i) {
    const Event comp =
        run_handler(model, state, make_input(0, 1.0, static_cast<std::uint64_t>(i)));
    EXPECT_EQ(map.worker_of(comp.dst_lp), 0);  // all local in comp phase
    const Event comm =
        run_handler(model, state, make_input(0, 6.0, 100000 + static_cast<std::uint64_t>(i)));
    EXPECT_NE(map.worker_of(comm.dst_lp), 0);  // never local in comm phase
  }
}

TEST(ImbalancedPholdTest, HotWorkersPayMultipliedCost) {
  LpMap map(2, 4, 4);
  ImbalancedPholdParams ip;
  ip.base.epg_units = 1000;
  ip.hot_worker_fraction = 0.25;  // 1 of 4 workers per node
  ip.hot_factor = 4.0;
  ImbalancedPholdModel model(map, ip);
  EXPECT_EQ(model.hot_workers_per_node(), 1);

  const Event hot = make_input(map.lp_of(0, 0), 1.0, 1);   // worker 0 of node 0
  const Event cold = make_input(map.lp_of(1, 0), 1.0, 2);  // worker 1 of node 0
  const Event hot2 = make_input(map.lp_of(4, 0), 1.0, 3);  // worker 0 of node 1
  EXPECT_DOUBLE_EQ(model.cost_units(hot), 4000);
  EXPECT_DOUBLE_EQ(model.cost_units(cold), 1000);
  EXPECT_DOUBLE_EQ(model.cost_units(hot2), 4000);
}

TEST(ImbalancedPholdTest, ZeroFractionMeansNoHotWorkers) {
  LpMap map(2, 4, 4);
  ImbalancedPholdParams ip;
  ip.hot_worker_fraction = 0.0;
  ImbalancedPholdModel model(map, ip);
  EXPECT_EQ(model.hot_workers_per_node(), 0);
  EXPECT_FALSE(model.is_hot(0));
}

}  // namespace
}  // namespace cagvt::models
