#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cagvt::obs {
namespace {

TEST(MetricsRegistryTest, DisabledReturnsNullHandles) {
  MetricsRegistry reg(false);
  CounterHandle c = reg.counter("a");
  GaugeHandle g = reg.gauge("b");
  HistogramHandle h = reg.histogram("c", 0, 10, 4);
  EXPECT_FALSE(c.valid());
  EXPECT_FALSE(g.valid());
  EXPECT_FALSE(h.valid());
  // Every operation on a null handle is a safe no-op.
  c.inc();
  g.set(3.0);
  g.max_of(7.0);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.get(), nullptr);
  EXPECT_TRUE(reg.snapshot().values.empty());
}

TEST(MetricsRegistryTest, CounterAccumulates) {
  MetricsRegistry reg(true);
  CounterHandle c = reg.counter("events");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(reg.snapshot().value("events"), 42.0);
}

TEST(MetricsRegistryTest, SameNameSharesOneSlot) {
  MetricsRegistry reg(true);
  CounterHandle a = reg.counter("shared");
  CounterHandle b = reg.counter("shared");
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
}

TEST(MetricsRegistryTest, GaugeSetAndMaxOf) {
  MetricsRegistry reg(true);
  GaugeHandle g = reg.gauge("queue.peak");
  g.set(4.0);
  g.max_of(2.0);  // smaller: no effect
  EXPECT_EQ(g.value(), 4.0);
  g.max_of(9.0);
  EXPECT_EQ(g.value(), 9.0);
}

TEST(MetricsRegistryTest, TypeMismatchThrows) {
  MetricsRegistry reg(true);
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", 0, 1, 2), std::invalid_argument);
}

TEST(MetricsRegistryTest, HistogramExpandsInSnapshot) {
  MetricsRegistry reg(true);
  HistogramHandle h = reg.histogram("depth", 0, 8, 4);
  h.observe(1.0);
  h.observe(3.0);
  h.observe(100.0);  // clamps into the last bucket
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("depth.count"), 3.0);
  EXPECT_NEAR(snap.value("depth.mean"), 104.0 / 3.0, 1e-12);
  EXPECT_EQ(snap.value("depth.min"), 1.0);
  EXPECT_EQ(snap.value("depth.max"), 100.0);
  EXPECT_EQ(snap.value("depth.bucket0"), 1.0);
  EXPECT_EQ(snap.value("depth.bucket1"), 1.0);
  EXPECT_EQ(snap.value("depth.bucket3"), 1.0);
}

TEST(MetricsRegistryTest, SnapshotIsNameOrdered) {
  MetricsRegistry reg(true);
  reg.counter("zeta");
  reg.counter("alpha");
  reg.gauge("mid");
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.values.size(), 3u);
  auto it = snap.values.begin();
  EXPECT_EQ(it->first, "alpha");
  EXPECT_EQ((++it)->first, "mid");
  EXPECT_EQ((++it)->first, "zeta");
}

TEST(MetricsRegistryTest, DiffSubtractsAndKeepsNewNames) {
  MetricsRegistry reg(true);
  CounterHandle c = reg.counter("events");
  c.inc(10);
  const MetricsSnapshot before = reg.snapshot();
  c.inc(5);
  reg.gauge("late").set(2.5);  // registered after `before`
  const MetricsSnapshot after = reg.snapshot();
  const MetricsSnapshot d = diff(after, before);
  EXPECT_EQ(d.value("events"), 5.0);
  EXPECT_EQ(d.value("late"), 2.5);
}

TEST(MetricsRegistryTest, ResetDropsEverything) {
  MetricsRegistry reg(true);
  reg.counter("events").inc(3);
  reg.reset();
  EXPECT_TRUE(reg.snapshot().values.empty());
  // Fresh registration starts from zero.
  EXPECT_EQ(reg.counter("events").value(), 0u);
}

}  // namespace
}  // namespace cagvt::obs
