// Golden-model equivalence: any Time Warp execution must commit exactly
// the same events as the sequential reference, regardless of message
// delays and the rollbacks they cause. The laggy in-test transport below
// deliberately delivers cross-kernel messages late to force stragglers.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>

#include "models/phold.hpp"
#include "pdes/kernel.hpp"
#include "pdes/seqref.hpp"
#include "test_model.hpp"

namespace cagvt::pdes {
namespace {

TEST(GoldenTest, SingleKernelMatchesSequentialReference) {
  LpMap map(1, 1, 16);
  models::PholdParams params;
  params.remote_pct = 0;
  params.regional_pct = 0;
  params.epg_units = 10;
  models::PholdModel model(map, params);
  const KernelConfig cfg{.end_vt = 50.0, .seed = 7};

  SequentialReference ref(model, map, cfg);
  ref.run();
  ASSERT_GT(ref.committed(), 100u);

  ThreadKernel kernel(model, map, 0, cfg);
  kernel.init();
  while (kernel.process_next().processed) {
  }
  kernel.final_commit();

  EXPECT_EQ(kernel.stats().committed, ref.committed());
  EXPECT_EQ(kernel.committed_fingerprint(), ref.fingerprint());
  EXPECT_EQ(kernel.stats().rolled_back, 0u);  // single thread: no stragglers
  for (LpId lp = 0; lp < map.total_lps(); ++lp) {
    EXPECT_EQ(std::memcmp(kernel.lp_state(lp).data(), ref.lp_state(lp).data(),
                          model.state_size()),
              0)
        << "state mismatch at lp " << lp;
  }
}

/// Multi-kernel harness with an artificial delivery lag measured in
/// scheduler rounds. Lag > 0 makes cross-thread messages arrive after the
/// receiver has optimistically advanced — the straggler storm a real
/// cluster produces.
struct LaggyCluster {
  LaggyCluster(const Model& model, const LpMap& map, KernelConfig cfg, int lag)
      : map_(map), lag_(lag) {
    for (int w = 0; w < map.total_workers(); ++w) {
      kernels_.emplace_back(model, map, w, cfg);
      kernels_.back().init();
    }
  }

  struct InFlight {
    std::uint64_t due_round;
    Event event;
  };

  void route(std::uint64_t round, const std::vector<Event>& events) {
    for (const Event& e : events)
      wire_.push_back({round + static_cast<std::uint64_t>(lag_), e});
  }

  /// Runs to quiescence; returns the number of scheduler rounds.
  std::uint64_t run() {
    std::uint64_t round = 0;
    bool progress = true;
    while (progress) {
      progress = false;
      ++round;
      // Deliver due messages (FIFO preserves per-pair order).
      for (std::size_t i = 0; i < wire_.size();) {
        if (wire_[i].due_round <= round) {
          const Event e = wire_[i].event;
          wire_.erase(wire_.begin() + static_cast<std::ptrdiff_t>(i));
          const Outcome out = kernels_[static_cast<std::size_t>(map_.worker_of(e.dst_lp))]
                                  .deposit(e);
          route(round, out.external);
          progress = true;
        } else {
          ++i;
        }
      }
      // Each kernel processes a small batch per round.
      for (auto& kernel : kernels_) {
        for (int b = 0; b < 2; ++b) {
          const Outcome out = kernel.process_next();
          if (!out.processed) break;
          route(round, out.external);
          progress = true;
        }
      }
      if (!progress && !wire_.empty()) {
        // Only future deliveries left; jump time forward.
        progress = true;
      }
      CAGVT_CHECK_MSG(round < 1000000, "laggy cluster failed to quiesce");
    }
    return round;
  }

  std::uint64_t total_committed() {
    std::uint64_t total = 0;
    for (auto& k : kernels_) {
      k.final_commit();
      total += k.stats().committed;
    }
    return total;
  }

  std::uint64_t total_fingerprint() const {
    std::uint64_t total = 0;
    for (const auto& k : kernels_) total += k.committed_fingerprint();
    return total;
  }

  KernelStats total_stats() const {
    KernelStats s;
    for (const auto& k : kernels_) s += k.stats();
    return s;
  }

  const LpMap& map_;
  int lag_;
  std::vector<ThreadKernel> kernels_;
  std::deque<InFlight> wire_;
};

struct GoldenCase {
  int nodes;
  int workers;
  int lps;
  int lag;
  double remote;
  double regional;
  std::uint64_t seed;
};

class GoldenSweep : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenSweep, LaggyTimeWarpMatchesSequentialReference) {
  const GoldenCase c = GetParam();
  LpMap map(c.nodes, c.workers, c.lps);
  models::PholdParams params;
  params.remote_pct = c.remote;
  params.regional_pct = c.regional;
  params.epg_units = 10;
  params.seed = c.seed * 31 + 5;
  models::PholdModel model(map, params);
  const KernelConfig cfg{.end_vt = 25.0, .seed = c.seed};

  SequentialReference ref(model, map, cfg);
  ref.run();
  ASSERT_GT(ref.committed(), 50u);

  LaggyCluster cluster(model, map, cfg, c.lag);
  cluster.run();

  EXPECT_EQ(cluster.total_committed(), ref.committed());
  EXPECT_EQ(cluster.total_fingerprint(), ref.fingerprint());

  // Every LP's final state must match the reference.
  for (LpId lp = 0; lp < map.total_lps(); ++lp) {
    const auto& kernel = cluster.kernels_[static_cast<std::size_t>(map.worker_of(lp))];
    EXPECT_EQ(std::memcmp(kernel.lp_state(lp).data(), ref.lp_state(lp).data(),
                          model.state_size()),
              0)
        << "state mismatch at lp " << lp;
  }

  if (c.lag > 0) {
    // The run must have actually exercised the rollback machinery.
    EXPECT_GT(cluster.total_stats().rolled_back, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GoldenSweep,
    ::testing::Values(
        GoldenCase{1, 2, 8, 0, 0.0, 0.5, 1},   // in-order cross-thread
        GoldenCase{1, 2, 8, 3, 0.0, 0.5, 2},   // laggy, heavy regional
        GoldenCase{1, 4, 4, 5, 0.0, 0.3, 3},   // more threads, laggier
        GoldenCase{2, 2, 8, 3, 0.2, 0.3, 4},   // cross-node traffic
        GoldenCase{4, 2, 4, 7, 0.3, 0.3, 5},   // many nodes, very late
        GoldenCase{2, 3, 5, 2, 0.1, 0.6, 6},   // odd sizes
        GoldenCase{8, 1, 4, 4, 0.5, 0.0, 7},   // remote-only traffic
        GoldenCase{1, 8, 2, 6, 0.0, 0.9, 8}),  // tiny LPs, extreme lag
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      const auto& c = info.param;
      return "n" + std::to_string(c.nodes) + "w" + std::to_string(c.workers) + "lp" +
             std::to_string(c.lps) + "lag" + std::to_string(c.lag) + "s" +
             std::to_string(c.seed);
    });

TEST(GoldenTest, TestModelChainAcrossKernels) {
  LpMap map(1, 4, 2);
  testing::TestModelCfg tcfg;
  tcfg.stride = 3;  // hop across workers
  tcfg.delay = 0.7;
  testing::TestModel model(map, tcfg);
  const KernelConfig cfg{.end_vt = 20.0, .seed = 3};

  SequentialReference ref(model, map, cfg);
  ref.run();

  LaggyCluster cluster(model, map, cfg, 4);
  cluster.run();
  EXPECT_EQ(cluster.total_committed(), ref.committed());
  EXPECT_EQ(cluster.total_fingerprint(), ref.fingerprint());
}

}  // namespace
}  // namespace cagvt::pdes
