// Golden correctness for dynamic LP migration: moving LPs between workers
// at GVT fences changes WHERE events execute, never WHAT commits. Every
// model x GVT-algorithm x {static, migrating} cell must commit exactly
// the sequential oracle's event set and leave the LPs in the oracle's
// final state — migration is placement-only. On top of the golden matrix:
// bit-identical reruns (the coroutine substrate stays deterministic with
// the balancer on) and migration x crash-recovery (a checkpoint restore
// rewinds the owner table together with the kernels).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/simulation.hpp"
#include "fault/fault_parse.hpp"
#include "lb/lb_config.hpp"
#include "models/registry.hpp"
#include "pdes/seqref.hpp"

namespace cagvt::core {
namespace {

// Aggressive policy so the small test cluster actually migrates: low
// trigger, no cooldown. Correctness must hold for ANY parameter choice.
constexpr const char* kAggressiveLb = "roughness,trigger=0.3,cooldown=1";

SimulationConfig small_config() {
  SimulationConfig cfg;
  cfg.nodes = 2;
  cfg.threads_per_node = 3;
  cfg.lps_per_worker = 6;
  cfg.end_vt = 30.0;
  cfg.seed = 31;
  return cfg;
}

struct MigrationCase {
  const char* name;
  const char* model;
  /// Skewed workloads must actually migrate (summed across GVT kinds).
  bool expect_migrations = false;
};

class MigrationGolden : public ::testing::TestWithParam<MigrationCase> {};

TEST_P(MigrationGolden, PlacementOnlyAcrossAlgorithmsAndPolicies) {
  SimulationConfig cfg = small_config();
  const pdes::LpMap map = Simulation::make_map(cfg);
  const auto model =
      models::make_model(GetParam().model, Options::parse_kv(""), map, cfg.end_vt);

  pdes::SequentialReference ref(*model, map, {.end_vt = cfg.end_vt, .seed = cfg.seed});
  ref.run();
  ASSERT_GT(ref.committed(), 100u);

  std::uint64_t total_migrations = 0;
  for (const GvtKind kind :
       {GvtKind::kBarrier, GvtKind::kMattern, GvtKind::kControlledAsync,
        GvtKind::kEpoch}) {
    for (const bool migrate : {false, true}) {
      cfg.gvt = kind;
      cfg.lb = migrate ? lb::parse_lb(kAggressiveLb) : lb::LbConfig{};
      Simulation sim(cfg, *model);
      const SimulationResult r = sim.run(120.0);
      const std::string cell = std::string(GetParam().name) + "/" +
                               std::string(to_string(kind)) +
                               (migrate ? "/lb" : "/static");
      ASSERT_TRUE(r.completed) << cell;
      EXPECT_EQ(r.events.committed, ref.committed()) << cell;
      EXPECT_EQ(r.committed_fingerprint, ref.fingerprint()) << cell;
      EXPECT_EQ(r.state_hash, ref.state_hash()) << cell;
      if (migrate) {
        total_migrations += r.lb_migrations;
      } else {
        EXPECT_EQ(r.lb_migrations, 0u) << cell;
        EXPECT_EQ(r.owner_table_version, 0u) << cell;
      }
    }
  }
  if (GetParam().expect_migrations) {
    EXPECT_GT(total_migrations, 0u) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, MigrationGolden,
    ::testing::Values(MigrationCase{"phold", "phold"},
                      MigrationCase{"imbalanced", "imbalanced-phold",
                                    /*expect_migrations=*/true},
                      MigrationCase{"hotspot", "hotspot-phold",
                                    /*expect_migrations=*/true}),
    [](const ::testing::TestParamInfo<MigrationCase>& info) { return info.param.name; });

TEST(MigrationDeterminism, RerunsAreBitIdentical) {
  SimulationConfig cfg = small_config();
  cfg.gvt = GvtKind::kMattern;
  cfg.lb = lb::parse_lb(kAggressiveLb);
  const pdes::LpMap map = Simulation::make_map(cfg);
  const auto model =
      models::make_model("imbalanced-phold", Options::parse_kv(""), map, cfg.end_vt);

  SimulationResult runs[2];
  for (SimulationResult& r : runs) {
    Simulation sim(cfg, *model);
    r = sim.run(120.0);
    ASSERT_TRUE(r.completed);
    ASSERT_GT(r.lb_migrations, 0u);
  }
  EXPECT_EQ(runs[0].committed_fingerprint, runs[1].committed_fingerprint);
  EXPECT_EQ(runs[0].state_hash, runs[1].state_hash);
  EXPECT_EQ(runs[0].events.committed, runs[1].events.committed);
  EXPECT_EQ(runs[0].events.rolled_back, runs[1].events.rolled_back);
  EXPECT_EQ(runs[0].gvt_rounds, runs[1].gvt_rounds);
  EXPECT_EQ(runs[0].lb_migrations, runs[1].lb_migrations);
  EXPECT_EQ(runs[0].lb_migration_rounds, runs[1].lb_migration_rounds);
  EXPECT_EQ(runs[0].lb_forwards, runs[1].lb_forwards);
  EXPECT_EQ(runs[0].owner_table_version, runs[1].owner_table_version);
  EXPECT_DOUBLE_EQ(runs[0].wall_seconds, runs[1].wall_seconds);
}

TEST(MigrationRecovery, CrashRestoreRewindsOwnerTableWithTheKernels) {
  SimulationConfig cfg = small_config();
  cfg.gvt = GvtKind::kMattern;
  cfg.lb = lb::parse_lb(kAggressiveLb);
  cfg.ckpt_every = 3;
  cfg.faults = fault::parse_fault_schedule("crash:node=1,t=500us,down=300us");
  const pdes::LpMap map = Simulation::make_map(cfg);
  const auto model =
      models::make_model("imbalanced-phold", Options::parse_kv(""), map, cfg.end_vt);

  pdes::SequentialReference ref(*model, map, {.end_vt = cfg.end_vt, .seed = cfg.seed});
  ref.run();

  Simulation sim(cfg, *model);
  const SimulationResult r = sim.run(120.0);
  ASSERT_TRUE(r.completed);
  // The schedule must exercise both subsystems: migrations before and
  // after a real checkpoint restore. A restore rewinds the owner table to
  // the checkpoint's version (its snapshot is captured with the kernel
  // slices); stale-epoch events surviving the rewind would break the
  // fingerprint below.
  EXPECT_GE(r.restores, 1u);
  EXPECT_GT(r.lb_migrations, 0u);
  EXPECT_EQ(r.events.committed, ref.committed());
  EXPECT_EQ(r.committed_fingerprint, ref.fingerprint());
  EXPECT_EQ(r.state_hash, ref.state_hash());
}

}  // namespace
}  // namespace cagvt::core
