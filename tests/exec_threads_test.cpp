// Unit coverage for the real-thread backend building blocks: the MPSC inbox
// queue's ordering guarantees and the GVT fence under a round storm (a
// fence round after every single event batch). Longer soak runs live in
// exec_stress_test.cpp under the "stress" ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/simulation.hpp"
#include "exec/backend.hpp"
#include "exec/mpsc_queue.hpp"
#include "models/registry.hpp"
#include "pdes/seqref.hpp"

namespace cagvt::exec {
namespace {

TEST(MpscQueueTest, PreservesPerProducerOrderUnderContention) {
  struct Item {
    int producer;
    int seq;
  };
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 5000;

  MpscQueue<Item> queue;
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &go, p] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i) queue.push(Item{p, i});
    });
  }
  go.store(true, std::memory_order_release);

  // Consume concurrently with production, the way a worker loop does.
  std::vector<Item> drained;
  std::vector<int> next_seq(kProducers, 0);
  std::size_t total = 0;
  while (total < static_cast<std::size_t>(kProducers) * kPerProducer) {
    drained.clear();
    if (queue.drain(drained) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (const Item& item : drained) {
      // FIFO per producer: each producer's items appear in push order.
      ASSERT_EQ(item.seq, next_seq[item.producer]);
      ++next_seq[item.producer];
    }
    total += drained.size();
  }
  for (auto& t : producers) t.join();

  EXPECT_TRUE(queue.approx_empty());
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kPerProducer);
}

TEST(MpscQueueTest, DrainAppendsAndReportsCount) {
  MpscQueue<int> queue;
  EXPECT_TRUE(queue.approx_empty());
  queue.push(1);
  queue.push(2);
  EXPECT_FALSE(queue.approx_empty());

  std::vector<int> out{99};
  EXPECT_EQ(queue.drain(out), 2u);
  ASSERT_EQ(out.size(), 3u);  // appended after the existing element
  EXPECT_EQ(out[0], 99);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(out[2], 2);
  EXPECT_EQ(queue.drain(out), 0u);
}

core::SimulationConfig small_config() {
  core::SimulationConfig cfg;
  cfg.nodes = 2;
  cfg.threads_per_node = 3;
  cfg.lps_per_worker = 6;
  cfg.end_vt = 20.0;
  cfg.gvt_interval = 6;
  cfg.seed = 31;
  return cfg;
}

void expect_matches_seqref(const core::SimulationConfig& cfg, const pdes::Model& model,
                           const core::SimulationResult& r) {
  const pdes::LpMap map = core::Simulation::make_map(cfg);
  pdes::SequentialReference ref(model, map, {.end_vt = cfg.end_vt, .seed = cfg.seed});
  ref.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.events.committed, ref.committed());
  EXPECT_EQ(r.committed_fingerprint, ref.fingerprint());
  EXPECT_EQ(r.state_hash, ref.state_hash());
}

TEST(GvtFenceTest, RoundStormEveryIterationStillCommitsCorrectly) {
  // gvt_interval=1 makes every worker request a fence round after every
  // batch: the protocol's quiesce/contribute/adopt machinery runs hundreds
  // of times in a short run, amplifying any barrier-phasing bug.
  for (const core::GvtKind kind :
       {core::GvtKind::kBarrier, core::GvtKind::kMattern,
        core::GvtKind::kControlledAsync, core::GvtKind::kEpoch}) {
    core::SimulationConfig cfg = small_config();
    cfg.gvt = kind;
    cfg.gvt_interval = 1;
    const pdes::LpMap map = core::Simulation::make_map(cfg);
    const auto model = models::make_model(
        "phold", Options::parse_kv("remote=0.2,regional=0.3,epg=500"), map, cfg.end_vt);

    const core::SimulationResult r =
        run_simulation(cfg, *model, BackendKind::kThreads, 120.0);
    expect_matches_seqref(cfg, *model, r);
    EXPECT_GT(r.gvt_rounds, 5u) << to_string(kind);
  }
}

TEST(GvtFenceTest, CaGvtControlAnnouncesFireUnderBacklog) {
  // A tiny queue threshold forces the CA-GVT control path (any worker may
  // announce a round outside the cadence); the run must still agree with
  // the reference and must record synchronous control rounds.
  core::SimulationConfig cfg = small_config();
  cfg.gvt = core::GvtKind::kControlledAsync;
  cfg.ca_queue_threshold = 1;
  const pdes::LpMap map = core::Simulation::make_map(cfg);
  const auto model = models::make_model(
      "phold", Options::parse_kv("remote=0.3,regional=0.3,epg=500"), map, cfg.end_vt);

  const core::SimulationResult r =
      run_simulation(cfg, *model, BackendKind::kThreads, 120.0);
  expect_matches_seqref(cfg, *model, r);
  EXPECT_GT(r.sync_rounds, 0u);
}

}  // namespace
}  // namespace cagvt::exec
