// Deterministic scripted model for engine unit tests: no randomness, so
// every test can predict exact timestamps, uids, and state contents.
#pragma once

#include "pdes/model.hpp"

namespace cagvt::pdes::testing {

struct TestModelCfg {
  bool generate = true;   // handler schedules one follow-up event
  double delay = 1.0;     // timestamp increment of follow-ups
  int stride = 1;         // follow-up destination = (lp + stride) % total
  bool start_event = true;
  double start_base = 1.0;  // LP k starts at start_base + 0.25*k
  double cost = 10.0;
};

class TestModel : public Model {
 public:
  TestModel(const LpMap& map, TestModelCfg cfg = {}) : map_(map), cfg_(cfg) {}

  struct State {
    std::uint64_t count;
    double last_ts;
    std::uint64_t checksum;
  };

  std::size_t state_size() const override { return sizeof(State); }

  void init_lp(LpId lp, std::span<std::byte> state, EventSink& sink) const override {
    state_as<State>(state) = State{0, 0.0, 0};
    if (cfg_.start_event)
      sink.schedule(lp, cfg_.start_base + 0.25 * static_cast<double>(lp));
  }

  void handle_event(std::span<std::byte> state, const Event& event,
                    EventSink& sink) const override {
    auto& s = state_as<State>(state);
    ++s.count;
    s.last_ts = event.recv_ts;
    s.checksum = hash_combine(s.checksum, event.uid);
    if (cfg_.generate) {
      const LpId dst =
          static_cast<LpId>((event.dst_lp + cfg_.stride) % map_.total_lps());
      sink.schedule(dst, event.recv_ts + cfg_.delay);
    }
  }

  double cost_units(const Event&) const override { return cfg_.cost; }

 private:
  const LpMap& map_;
  TestModelCfg cfg_;
};

}  // namespace cagvt::pdes::testing
