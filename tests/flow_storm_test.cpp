// StormDetector unit coverage over synthetic rollback streams: healthy
// straggler-dominated speculation must never be declared a storm, an
// anti-message echo cascade must be (via the secondary-fraction EWMA), a
// deepening cascade must trip the slope trigger even while the secondary
// fraction is below threshold, and a declared storm must release with
// hysteresis — not on the first calm round.
#include <gtest/gtest.h>

#include <cstdint>

#include "flow/storm_detector.hpp"

namespace cagvt::flow {
namespace {

/// One GVT round of `episodes` rollback episodes, `secondary` of which were
/// caused by anti-messages, all of uniform `depth`. Returns storming().
bool feed_round(StormDetector& det, int episodes, int secondary, std::uint64_t depth) {
  for (int i = 0; i < episodes; ++i)
    det.note(depth, /*secondary=*/i < secondary);
  return det.fold_round();
}

TEST(StormDetectorTest, HealthySpeculationNeverStorms) {
  // Straggler-dominated rounds with shallow cascades: the normal cost of
  // optimism, not a storm.
  StormDetector det(0.5);
  for (int round = 0; round < 50; ++round)
    EXPECT_FALSE(feed_round(det, /*episodes=*/10, /*secondary=*/2, /*depth=*/2));
  EXPECT_EQ(det.storms(), 0u);
  EXPECT_LT(det.secondary_fraction(), 0.5);
}

TEST(StormDetectorTest, IdleAndTrickleRoundsAreIgnored) {
  // Rounds below the minimum-episode floor carry no storm evidence even if
  // every episode is secondary (a single anti annihilation is not an echo).
  StormDetector det(0.5);
  for (int round = 0; round < 30; ++round)
    EXPECT_FALSE(feed_round(det, /*episodes=*/2, /*secondary=*/2, /*depth=*/30));
  EXPECT_EQ(det.storms(), 0u);
  // Fully idle rounds neither: the EWMAs decay toward zero.
  for (int round = 0; round < 30; ++round) EXPECT_FALSE(feed_round(det, 0, 0, 0));
  EXPECT_EQ(det.storms(), 0u);
}

TEST(StormDetectorTest, EchoCascadeTripsSecondaryFraction) {
  // Anti-dominated rounds: the EWMA climbs past the threshold within a few
  // rounds and a storm is declared exactly once.
  StormDetector det(0.5);
  bool declared = false;
  for (int round = 0; round < 10; ++round)
    declared = feed_round(det, /*episodes=*/20, /*secondary=*/18, /*depth=*/3) || declared;
  EXPECT_TRUE(declared);
  EXPECT_TRUE(det.storming());
  EXPECT_EQ(det.storms(), 1u);
  EXPECT_GE(det.secondary_fraction(), 0.5);
}

TEST(StormDetectorTest, DeepeningCascadeTripsSlopeTrigger) {
  // Secondary fraction stays below threshold, but the mean depth grows
  // every round — a diverging cascade the slope trigger must catch.
  StormDetector det(0.9);  // secondary trigger effectively disabled
  bool declared = false;
  for (int round = 0; round < 12; ++round) {
    const auto depth = static_cast<std::uint64_t>(8 + 6 * round);
    declared = feed_round(det, /*episodes=*/10, /*secondary=*/3, depth) || declared;
  }
  EXPECT_TRUE(declared);
  EXPECT_LT(det.secondary_fraction(), 0.9);
  EXPECT_GT(det.depth_slope(), 0.0);
}

TEST(StormDetectorTest, ReleasesWithHysteresisNotFirstCalmRound) {
  StormDetector det(0.5);
  for (int round = 0; round < 10; ++round)
    feed_round(det, /*episodes=*/20, /*secondary=*/18, /*depth=*/3);
  ASSERT_TRUE(det.storming());

  // First quiet round: still storming (hysteresis holds the declaration).
  EXPECT_TRUE(feed_round(det, 0, 0, 0));
  // Second consecutive quiet round releases it.
  EXPECT_FALSE(feed_round(det, 0, 0, 0));
  EXPECT_FALSE(det.storming());
  EXPECT_EQ(det.storms(), 1u);

  // A relapse is a NEW storm episode.
  for (int round = 0; round < 10; ++round)
    feed_round(det, /*episodes=*/20, /*secondary=*/18, /*depth=*/3);
  EXPECT_TRUE(det.storming());
  EXPECT_EQ(det.storms(), 2u);
}

TEST(StormDetectorTest, ResetClearsStateButKeepsThreshold) {
  StormDetector det(0.5);
  for (int round = 0; round < 10; ++round)
    feed_round(det, /*episodes=*/20, /*secondary=*/18, /*depth=*/3);
  ASSERT_TRUE(det.storming());

  det.reset();
  EXPECT_FALSE(det.storming());
  EXPECT_EQ(det.storms(), 0u);
  EXPECT_DOUBLE_EQ(det.secondary_fraction(), 0.0);
  // The threshold survives the reset: the same echo stream storms again.
  bool declared = false;
  for (int round = 0; round < 10; ++round)
    declared = feed_round(det, 20, 18, 3) || declared;
  EXPECT_TRUE(declared);
}

}  // namespace
}  // namespace cagvt::flow
