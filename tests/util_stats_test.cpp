#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace cagvt {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Population stddev of this classic data set is exactly 2.
  EXPECT_NEAR(s.stddev_population(), 2.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(RunningStatTest, ResetClears) {
  RunningStat s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStatTest, NumericallyStableForLargeOffsets) {
  RunningStat s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.stddev_population(), 0.5, 1e-6);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // clamps to bucket 0
  h.add(0.5);
  h.add(3.0);
  h.add(9.99);
  h.add(42.0);  // clamps to last bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(4), 2u);
  EXPECT_EQ(h.stat().count(), 5u);
}

TEST(HistogramTest, ZeroBucketsClampsToOne) {
  // bucket_of computes counts_.size() - 1; an empty bucket vector would
  // underflow, so the constructor guarantees at least one bucket.
  Histogram h(0.0, 10.0, 0);
  EXPECT_EQ(h.buckets(), 1u);
  h.add(-5.0);
  h.add(3.0);
  h.add(100.0);
  EXPECT_EQ(h.bucket_count(0), 3u);
  EXPECT_EQ(h.stat().count(), 3u);
}

TEST(FormatTest, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
}

TEST(FormatTest, Si) {
  EXPECT_EQ(format_si(950.0), "950.00");
  EXPECT_EQ(format_si(1500.0), "1.50K");
  EXPECT_EQ(format_si(2.34e6), "2.34M");
  EXPECT_EQ(format_si(7.8e9), "7.80G");
}

}  // namespace
}  // namespace cagvt
