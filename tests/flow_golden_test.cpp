// Outcome-invariance for overload protection: `--flow=bounded` moves
// unprocessed events (cancelback), delays execution (throttle), and forces
// extra GVT rounds — none of which may change WHAT is computed. Every GVT
// algorithm under a budget tight enough to drive red pressure must commit
// exactly the sequential oracle's event set, byte-identical to the same
// run with `--flow=off`. The interaction tests pin the two hardest
// compositions: cancelback x crash recovery (parked events are checkpoint
// state) and the real-thread backend's fence-signaled pressure path.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/simulation.hpp"
#include "exec/backend.hpp"
#include "fault/fault_parse.hpp"
#include "flow/flow_config.hpp"
#include "models/hotspot_phold.hpp"
#include "models/phold.hpp"
#include "pdes/seqref.hpp"

namespace cagvt::core {
namespace {

SimulationConfig flow_config() {
  SimulationConfig cfg;
  cfg.nodes = 2;
  cfg.threads_per_node = 3;
  cfg.lps_per_worker = 6;
  cfg.end_vt = 20.0;
  cfg.gvt_interval = 12;  // long interval: speculation actually builds up
  cfg.seed = 31;
  return cfg;
}

/// Hotspot PHOLD on a thin-event profile: rollback-heavy, pool-hungry.
models::HotspotPholdParams adversarial_params() {
  models::HotspotPholdParams params;
  params.base.regional_pct = 0.2;
  params.base.remote_pct = 0.1;
  params.base.epg_units = 500;
  params.hotspot_pct = 0.2;
  params.zipf_s = 1.1;
  params.hot_cost = 6.0;
  return params;
}

TEST(FlowGoldenMatrix, BoundedMatchesOffAndOracleAcrossGvtKinds) {
  const SimulationConfig base = flow_config();
  const pdes::LpMap map = Simulation::make_map(base);
  const models::HotspotPholdModel model(map, adversarial_params());

  pdes::SequentialReference ref(model, map, {.end_vt = base.end_vt, .seed = base.seed});
  ref.run();
  ASSERT_GT(ref.committed(), 100u);

  std::uint64_t total_cancelbacks = 0;
  std::uint64_t total_throttles = 0;
  for (const GvtKind kind :
       {GvtKind::kBarrier, GvtKind::kMattern, GvtKind::kControlledAsync,
        GvtKind::kEpoch}) {
    SimulationConfig off = base;
    off.gvt = kind;
    Simulation off_sim(off, model);
    const SimulationResult r_off = off_sim.run(120.0);
    ASSERT_TRUE(r_off.completed) << to_string(kind) << "/off";

    // A budget well below the unconstrained peak, so relief must engage.
    SimulationConfig bounded = off;
    bounded.flow = flow::parse_flow("bounded,mem=32,clamp=2");
    Simulation bounded_sim(bounded, model);
    const SimulationResult r = bounded_sim.run(120.0);
    const std::string where = std::string(to_string(kind)) + "/bounded";
    ASSERT_TRUE(r.completed) << where;

    // Identical outcomes: same committed set, same final LP states — both
    // against the oracle and against the unconstrained run.
    EXPECT_EQ(r.events.committed, ref.committed()) << where;
    EXPECT_EQ(r.committed_fingerprint, ref.fingerprint()) << where;
    EXPECT_EQ(r.state_hash, ref.state_hash()) << where;
    EXPECT_EQ(r.committed_fingerprint, r_off.committed_fingerprint) << where;
    EXPECT_EQ(r.state_hash, r_off.state_hash) << where;

    // --flow=off reports no flow activity at all (zero-cost off).
    EXPECT_EQ(r_off.flow_cancelbacks, 0u) << to_string(kind);
    EXPECT_EQ(r_off.flow_throttle_engagements, 0u) << to_string(kind);
    EXPECT_EQ(r_off.flow_forced_rounds, 0u) << to_string(kind);
    // ...but still measures the pool (the A10 unbounded-growth evidence).
    EXPECT_GT(r_off.peak_event_pool, 0u) << to_string(kind);

    // Ledger sanity: every release/absorption traces back to a cancelback.
    // (Events parked in the run's final rounds may legitimately still be
    // parked at completion when their timestamps lie beyond end_vt, so this
    // is >=, not ==.)
    EXPECT_GE(r.flow_cancelbacks, r.flow_releases + r.flow_absorbed_antis) << where;
    total_cancelbacks += r.flow_cancelbacks;
    total_throttles += r.flow_throttle_engagements;
  }
  // The matrix must actually exercise the relief paths (a budget that never
  // fires would vacuously pass everything above).
  EXPECT_GT(total_cancelbacks, 0u);
  EXPECT_GT(total_throttles, 0u);
}

TEST(FlowGoldenMatrix, BoundedRunsAreBitReproducible) {
  const SimulationConfig base = flow_config();
  const pdes::LpMap map = Simulation::make_map(base);
  const models::HotspotPholdModel model(map, adversarial_params());

  SimulationConfig cfg = base;
  cfg.gvt = GvtKind::kControlledAsync;
  cfg.flow = flow::parse_flow("bounded,mem=64");
  Simulation sim(cfg, model);
  const SimulationResult first = sim.run(120.0);
  const SimulationResult second = sim.run(120.0);
  ASSERT_TRUE(first.completed);
  EXPECT_EQ(first.committed_fingerprint, second.committed_fingerprint);
  EXPECT_EQ(first.state_hash, second.state_hash);
  EXPECT_EQ(first.events.processed, second.events.processed);
  EXPECT_EQ(first.flow_cancelbacks, second.flow_cancelbacks);
  EXPECT_EQ(first.flow_forced_rounds, second.flow_forced_rounds);
}

TEST(FlowGoldenMatrix, MemSqueezeDrivesReliefUnderFlow) {
  // A mid-run `mem:` squeeze narrows the effective budget below the static
  // one; the squeeze window must produce relief activity that the same run
  // without the fault does not, and outcomes must match the oracle anyway.
  const SimulationConfig base = flow_config();
  const pdes::LpMap map = Simulation::make_map(base);
  const models::HotspotPholdModel model(map, adversarial_params());
  pdes::SequentialReference ref(model, map, {.end_vt = base.end_vt, .seed = base.seed});
  ref.run();

  SimulationConfig cfg = base;
  cfg.gvt = GvtKind::kMattern;
  cfg.flow = flow::parse_flow("bounded,mem=4096");  // wide: squeeze does the work
  Simulation calm_sim(cfg, model);
  const SimulationResult calm = calm_sim.run(120.0);
  ASSERT_TRUE(calm.completed);

  cfg.faults = fault::parse_fault_schedule("mem:worker=all,budget=48,t=20us..");
  Simulation squeezed_sim(cfg, model);
  const SimulationResult squeezed = squeezed_sim.run(120.0);
  ASSERT_TRUE(squeezed.completed);
  EXPECT_EQ(squeezed.committed_fingerprint, ref.fingerprint());
  EXPECT_EQ(squeezed.state_hash, ref.state_hash());
  EXPECT_GT(squeezed.flow_throttle_engagements, 0u);
  EXPECT_GE(squeezed.flow_cancelbacks, calm.flow_cancelbacks);
}

TEST(FlowGoldenMatrix, CancelbackComposesWithCrashRecovery) {
  // Parked events are the ONLY copy of their event, so they are checkpoint
  // state: a crash mid-pressure must rewind the parked ledger with the
  // cluster and still reconverge on the oracle's committed set.
  const SimulationConfig base = flow_config();
  const pdes::LpMap map = Simulation::make_map(base);
  const models::HotspotPholdModel model(map, adversarial_params());
  pdes::SequentialReference ref(model, map, {.end_vt = base.end_vt, .seed = base.seed});
  ref.run();

  for (const GvtKind kind :
       {GvtKind::kMattern, GvtKind::kControlledAsync, GvtKind::kEpoch}) {
    SimulationConfig cfg = base;
    cfg.gvt = kind;
    cfg.flow = flow::parse_flow("bounded,mem=32,clamp=2");
    cfg.ckpt_every = 3;
    cfg.faults = fault::parse_fault_schedule("crash:node=1,t=500us,down=300us");
    Simulation sim(cfg, model);
    const SimulationResult r = sim.run(180.0);
    const std::string where = std::string(to_string(kind)) + "/crash";
    ASSERT_TRUE(r.completed) << where;
    EXPECT_GE(r.restores, 1u) << where;
    EXPECT_EQ(r.events.committed, ref.committed()) << where;
    EXPECT_EQ(r.committed_fingerprint, ref.fingerprint()) << where;
    EXPECT_EQ(r.state_hash, ref.state_hash()) << where;
  }
}

// Named for the TSan CI lane (-R ...|FlowThreadsTest): the threads-backend
// pressure path — per-worker detectors, the clamp, and red-pressure fence
// announces — must be data-race-free and outcome-invariant.
TEST(FlowThreadsTest, ThreadsBackendBoundedMatchesOracle) {
  SimulationConfig cfg;
  cfg.nodes = 2;
  cfg.threads_per_node = 3;
  cfg.lps_per_worker = 6;
  cfg.end_vt = 20.0;
  cfg.gvt_interval = 12;
  cfg.seed = 31;
  cfg.flow = flow::parse_flow("bounded,mem=32,clamp=2");

  const pdes::LpMap map = Simulation::make_map(cfg);
  models::PholdParams params;
  params.regional_pct = 0.3;
  params.remote_pct = 0.1;
  params.epg_units = 500;
  const models::PholdModel model(map, params);
  pdes::SequentialReference ref(model, map, {.end_vt = cfg.end_vt, .seed = cfg.seed});
  ref.run();
  ASSERT_GT(ref.committed(), 100u);

  for (const GvtKind kind :
       {GvtKind::kBarrier, GvtKind::kMattern, GvtKind::kControlledAsync,
        GvtKind::kEpoch}) {
    cfg.gvt = kind;
    const SimulationResult r =
        exec::run_simulation(cfg, model, exec::BackendKind::kThreads, 120.0);
    ASSERT_TRUE(r.completed) << to_string(kind);
    EXPECT_EQ(r.events.committed, ref.committed()) << to_string(kind);
    EXPECT_EQ(r.committed_fingerprint, ref.fingerprint()) << to_string(kind);
    EXPECT_EQ(r.state_hash, ref.state_hash()) << to_string(kind);
    EXPECT_GT(r.peak_event_pool, 0u) << to_string(kind);
  }
}

}  // namespace
}  // namespace cagvt::core
