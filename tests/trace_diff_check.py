#!/usr/bin/env python3
"""ctest wrapper certifying scripts/trace_diff.py's contract.

Synthesizes trace CSV pairs (same schema as --trace-csv output) and checks
the tool's exit codes and messages:
  * identical pair              -> exit 0, "identical"
  * reinterleaved-but-equal pair-> exit 0 (per-stream alignment works)
  * field divergence            -> exit 1, "DIVERGED at" naming the first
                                   diverging record
  * missing/extra records       -> exit 1, "EXTRA records in" the longer file
  * timing-only divergence      -> exit 1 plain, exit 0 with --ignore-time
  * bad usage                   -> exit 2

Usage: trace_diff_check.py /path/to/trace_diff.py
"""

import os
import subprocess
import sys
import tempfile

HEADER = "seq,t_ns,kind,node,worker,round,a,b,u,value,label"

# One record per (node, worker) stream pair, interleaved.
BASE_ROWS = [
    "0,100,gvt_round,0,0,1,0,0,0,5.0,round",
    "1,120,commit,0,1,1,3,4,77,1.0,ev",
    "2,150,gvt_round,1,0,1,0,0,0,5.0,round",
    "3,180,commit,0,1,1,5,6,78,2.0,ev",
    "4,210,rollback,1,1,2,9,0,79,0.0,undo",
]


def write_csv(directory, name, rows):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        f.write(HEADER + "\n")
        for row in rows:
            f.write(row + "\n")
    return path


def run(tool, *argv):
    proc = subprocess.run(
        [sys.executable, tool, *argv], capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def check(condition, label, output):
    if not condition:
        sys.stderr.write(f"FAIL: {label}\n--- tool output ---\n{output}\n")
        sys.exit(1)
    print(f"ok: {label}")


def main():
    if len(sys.argv) != 2:
        sys.stderr.write(__doc__)
        return 2
    tool = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        a = write_csv(tmp, "a.csv", BASE_ROWS)

        # 1. Identical files are identical.
        b = write_csv(tmp, "identical.csv", BASE_ROWS)
        code, out = run(tool, a, b)
        check(code == 0 and "identical" in out, "identical pair exits 0", out)

        # 2. A different global interleaving of the same per-stream records
        #    is still semantically identical (new seq, same streams).
        reordered = [BASE_ROWS[2], BASE_ROWS[0], BASE_ROWS[4],
                     BASE_ROWS[1], BASE_ROWS[3]]
        reseq = [f"{i}," + row.split(",", 1)[1] for i, row in enumerate(reordered)]
        b = write_csv(tmp, "reordered.csv", reseq)
        code, out = run(tool, a, b)
        check(code == 0, "reinterleaved pair exits 0", out)

        # 3. A diverging field is reported, pointing at the first divergence.
        diverged = list(BASE_ROWS)
        diverged[1] = "1,120,commit,0,1,1,3,4,77,9.0,ev"  # value 1.0 -> 9.0
        b = write_csv(tmp, "diverged.csv", diverged)
        code, out = run(tool, a, b)
        check(code == 1 and "DIVERGED at" in out, "field divergence exits 1", out)
        check("node=0 worker=1 kind=commit" in out and "value: 1.0 vs 9.0" in out,
              "divergence names the first diverging record", out)

        # 4. Extra records in one file are reported with the longer file.
        b = write_csv(tmp, "truncated.csv", BASE_ROWS[:-1])
        code, out = run(tool, a, b)
        check(code == 1 and "EXTRA records in" in out and a in out,
              "missing records exit 1 naming the longer file", out)

        # 5. Timing-only drift: divergence normally, identical with
        #    --ignore-time.
        shifted = [row.replace(",120,", ",999,") for row in BASE_ROWS]
        b = write_csv(tmp, "shifted.csv", shifted)
        code, out = run(tool, a, b)
        check(code == 1 and "t_ns" in out, "timing drift exits 1 by default", out)
        code, out = run(tool, a, b, "--ignore-time")
        check(code == 0, "timing drift exits 0 with --ignore-time", out)

        # 6. Usage errors exit 2.
        code, out = run(tool, a)
        check(code == 2, "missing operand exits 2", out)
        code, out = run(tool, a, b, "--bogus-flag")
        check(code == 2, "unknown flag exits 2", out)

    print("trace_diff_check: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
